//! A minimal, deterministic JSON codec.
//!
//! The writer is byte-stable: objects keep their fields in insertion
//! order, integers render exactly, and floats use Rust's shortest
//! round-trip formatting (never exponent notation), so the same value
//! always serializes to the same bytes on every platform and thread
//! count. The parser accepts standard JSON (it is more liberal than
//! the writer: exponents, escapes and surrogate pairs all parse) and
//! reports errors with byte offsets.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers are split into three variants so integers survive a
/// round trip exactly: the writer renders `Uint`/`Int` with no
/// fractional part and the parser maps integral literals back to
/// them (unsigned first).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// Any other finite number. Non-finite floats render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields keep insertion order (the writer never
    /// reorders, which is what makes reports byte-stable).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Look up a field of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (two-space indent, trailing
    /// newline), the format every `--json` report uses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_value(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip formatting; always
                    // keep a fractional part so the value re-parses
                    // as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains('.') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_value(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_value(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (one value plus optional whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = match cp {
                                0xD800..=0xDBFF => {
                                    // Surrogate pair: expect \uXXXX low half.
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let low = self.hex4()?;
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (low.wrapping_sub(0xDC00) & 0x3FF);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                }
                                cp => char::from_u32(cp),
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[start..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::object(vec![
            ("name", Json::Str("dither".into())),
            ("iterations", Json::Uint(60)),
            ("offset", Json::Int(-3)),
            ("ii", Json::Float(3.25)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::object(vec![("empty", Json::Array(vec![]))])),
        ])
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let a = sample().render();
        let b = sample().render();
        assert_eq!(a, b);
        let name = a.find("\"name\"").unwrap();
        let iters = a.find("\"iterations\"").unwrap();
        assert!(name < iters, "insertion order preserved");
    }

    #[test]
    fn round_trip_is_identity_on_rendered_text() {
        let text = sample().render();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text);
        assert_eq!(reparsed, sample());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(42.0).render();
        assert_eq!(text, "42.0\n");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(42.0));
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = Json::parse("  {\"a\": [1, 2.5e2, -7], \"s\": \"x\\u0041\\n\", \"b\": false} ")
            .unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA\n"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Json::Float(250.0)
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2], Json::Int(-7));
    }

    #[test]
    fn parser_reports_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let v = Json::Str("quote \" slash \\ tab \t ctrl \u{1} unicode é".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
    }
}

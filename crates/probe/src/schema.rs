//! The telemetry report schema.
//!
//! A [`RunReport`] captures one compiled-and-executed kernel (or one
//! figure computation) in machine-readable form: identity (kernel,
//! policy, seed), aggregate results (iterations, ticks, II), per-PE
//! activity with the edge-classified stall taxonomy ([`PeReport`]),
//! input-queue occupancy histograms ([`QueueReport`]), per-clock-
//! domain edge counters, optional wall-clock [`PhaseTimings`], and a
//! free-form scalar `metrics` table for figure binaries whose output
//! is not per-PE activity.
//!
//! Every type serializes through [`Json`] with a fixed field order,
//! so a report is byte-stable; `from_json` is the matching parser
//! used by the round-trip CI check and by `reproduce_all` when it
//! aggregates child reports.

use crate::json::{Json, JsonError};

/// Version stamp embedded in every report that carries only the v1
/// fields.
pub const SCHEMA_VERSION: u64 = 1;

/// Version stamp for reports that carry the additive v2 fault-campaign
/// section. v1 documents remain valid v2 documents (the section is
/// optional), so the parser accepts both and the serializer stamps the
/// lowest version that can describe the report — existing reproduction
/// reports stay byte-identical.
pub const SCHEMA_VERSION_V2: u64 = 2;

/// Version stamp for reports that carry the additive v3 design-space-
/// exploration section. Same additive contract as v2: the serializer
/// stamps the lowest version that can describe the report, so v1/v2
/// documents stay byte-identical.
pub const SCHEMA_VERSION_V3: u64 = 3;

/// A schema-level decoding error (structurally valid JSON that does
/// not describe a report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// What was wrong, with the offending field path.
    pub message: String,
}

impl SchemaError {
    fn new(message: impl Into<String>) -> SchemaError {
        SchemaError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid report: {}", self.message)
    }
}

impl std::error::Error for SchemaError {}

impl From<JsonError> for SchemaError {
    fn from(e: JsonError) -> Self {
        SchemaError::new(e.to_string())
    }
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError::new(format!("missing field `{key}`")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, SchemaError> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| SchemaError::new(format!("field `{key}` must be a non-negative integer")))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, SchemaError> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| SchemaError::new(format!("field `{key}` must be a number")))
}

fn req_str(v: &Json, key: &str) -> Result<String, SchemaError> {
    Ok(req(v, key)?
        .as_str()
        .ok_or_else(|| SchemaError::new(format!("field `{key}` must be a string")))?
        .to_string())
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, SchemaError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            SchemaError::new(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, SchemaError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| SchemaError::new(format!("field `{key}` must be a number"))),
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, SchemaError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| SchemaError::new(format!("field `{key}` must be a string"))),
    }
}

const DOMAINS: [&str; 3] = ["rest", "nominal", "sprint"];

fn domains_json(values: [u64; 3]) -> Json {
    Json::Object(
        DOMAINS
            .iter()
            .zip(values)
            .map(|(k, v)| (k.to_string(), Json::Uint(v)))
            .collect(),
    )
}

fn domains_from(v: &Json, key: &str) -> Result<[u64; 3], SchemaError> {
    let obj = req(v, key)?;
    let mut out = [0u64; 3];
    for (i, name) in DOMAINS.iter().enumerate() {
        out[i] = req_u64(obj, name)
            .map_err(|_| SchemaError::new(format!("field `{key}.{name}` must be an integer")))?;
    }
    Ok(out)
}

/// Wall-clock pipeline phase timings in nanoseconds.
///
/// Timings are the one nondeterministic part of a report: the
/// reproduction binaries omit them entirely (keeping their reports
/// bit-identical across thread counts), while the interactive CLI
/// includes them. `place_route_ns` covers placement and routing
/// together — the mapper interleaves them in its rip-up-and-retry
/// loop, so they are not separable from outside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Source-text parsing (CLI only; zero for library kernels).
    pub parse_ns: u64,
    /// AST → DFG lowering and optimization (CLI only).
    pub lower_ns: u64,
    /// Placement + routing.
    pub place_route_ns: u64,
    /// Rest/nominal/sprint power mapping.
    pub power_map_ns: u64,
    /// Bitstream assembly.
    pub assemble_ns: u64,
    /// Cycle-level fabric execution.
    pub simulate_ns: u64,
}

impl PhaseTimings {
    /// Sum of all phases.
    pub fn total_ns(&self) -> u64 {
        self.parse_ns
            + self.lower_ns
            + self.place_route_ns
            + self.power_map_ns
            + self.assemble_ns
            + self.simulate_ns
    }

    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("parse_ns", Json::Uint(self.parse_ns)),
            ("lower_ns", Json::Uint(self.lower_ns)),
            ("place_route_ns", Json::Uint(self.place_route_ns)),
            ("power_map_ns", Json::Uint(self.power_map_ns)),
            ("assemble_ns", Json::Uint(self.assemble_ns)),
            ("simulate_ns", Json::Uint(self.simulate_ns)),
            ("total_ns", Json::Uint(self.total_ns())),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<PhaseTimings, SchemaError> {
        Ok(PhaseTimings {
            parse_ns: req_u64(v, "parse_ns")?,
            lower_ns: req_u64(v, "lower_ns")?,
            place_route_ns: req_u64(v, "place_route_ns")?,
            power_map_ns: req_u64(v, "power_map_ns")?,
            assemble_ns: req_u64(v, "assemble_ns")?,
            simulate_ns: req_u64(v, "simulate_ns")?,
        })
    }
}

/// Per-PE activity with edge-classified stall attribution.
///
/// The edge-classified counters partition the PE's local rising
/// edges: every rising edge of a configured (non-power-gated) PE is
/// exactly one of fired / operand-starved / suppressor-gated /
/// backpressured / clock-gateable idle, so
///
/// ```text
/// fire_edges + operand_stall_edges + suppressed_stall_edges
///   + backpressure_stall_edges + gated_ticks == rising_edges
/// ```
///
/// holds for every PE (the conservation invariant, enforced by a
/// property test over random kernels). `input_stalls`/`output_stalls`
/// are the legacy per-cause event counts (one edge can count several)
/// that the energy model prices; the edge classification is what the
/// clock-gating analysis consumes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeReport {
    /// Column.
    pub x: u64,
    /// Row.
    pub y: u64,
    /// Op mnemonic, `"bypass"` for route-only PEs.
    pub op: String,
    /// Clock domain: `"rest"`, `"nominal"` or `"sprint"`.
    pub mode: String,
    /// Local rising edges while the run was live.
    pub rising_edges: u64,
    /// Op firings.
    pub fires: u64,
    /// Bypass tokens forwarded.
    pub bypass_tokens: u64,
    /// Edges on which the PE fired and/or forwarded at least once.
    pub fire_edges: u64,
    /// Edges starved of an operand (a required token absent).
    pub operand_stall_edges: u64,
    /// Edges where a token was present but the bisynchronous
    /// suppressor (or its one-period register-aging analogue) held it.
    pub suppressed_stall_edges: u64,
    /// Edges blocked by downstream backpressure only.
    pub backpressure_stall_edges: u64,
    /// Idle edges: nothing to do, nothing blocked — the local clock
    /// could have been gated.
    pub gated_ticks: u64,
    /// Legacy per-cause input-stall events (≥ stall edges).
    pub input_stalls: u64,
    /// Legacy per-cause output-stall events.
    pub output_stalls: u64,
    /// SRAM accesses (memory PEs).
    pub sram_accesses: u64,
}

impl PeReport {
    /// Does the edge classification partition the rising edges?
    pub fn conserves_edges(&self) -> bool {
        self.fire_edges
            + self.operand_stall_edges
            + self.suppressed_stall_edges
            + self.backpressure_stall_edges
            + self.gated_ticks
            == self.rising_edges
    }

    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("x", Json::Uint(self.x)),
            ("y", Json::Uint(self.y)),
            ("op", Json::Str(self.op.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("rising_edges", Json::Uint(self.rising_edges)),
            ("fires", Json::Uint(self.fires)),
            ("bypass_tokens", Json::Uint(self.bypass_tokens)),
            ("fire_edges", Json::Uint(self.fire_edges)),
            ("operand_stall_edges", Json::Uint(self.operand_stall_edges)),
            (
                "suppressed_stall_edges",
                Json::Uint(self.suppressed_stall_edges),
            ),
            (
                "backpressure_stall_edges",
                Json::Uint(self.backpressure_stall_edges),
            ),
            ("gated_ticks", Json::Uint(self.gated_ticks)),
            ("input_stalls", Json::Uint(self.input_stalls)),
            ("output_stalls", Json::Uint(self.output_stalls)),
            ("sram_accesses", Json::Uint(self.sram_accesses)),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<PeReport, SchemaError> {
        Ok(PeReport {
            x: req_u64(v, "x")?,
            y: req_u64(v, "y")?,
            op: req_str(v, "op")?,
            mode: req_str(v, "mode")?,
            rising_edges: req_u64(v, "rising_edges")?,
            fires: req_u64(v, "fires")?,
            bypass_tokens: req_u64(v, "bypass_tokens")?,
            fire_edges: req_u64(v, "fire_edges")?,
            operand_stall_edges: req_u64(v, "operand_stall_edges")?,
            suppressed_stall_edges: req_u64(v, "suppressed_stall_edges")?,
            backpressure_stall_edges: req_u64(v, "backpressure_stall_edges")?,
            gated_ticks: req_u64(v, "gated_ticks")?,
            input_stalls: req_u64(v, "input_stalls")?,
            output_stalls: req_u64(v, "output_stalls")?,
            sram_accesses: req_u64(v, "sram_accesses")?,
        })
    }
}

/// Input-queue occupancy histogram of one PE.
///
/// `occupancy[d]` counts, over the PE's local rising edges, how many
/// of its four direction queues held exactly `d` tokens — so for the
/// paper's depth-2 queues the histogram has three buckets (0, 1, 2)
/// and sums to `4 × rising_edges`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueReport {
    /// Column.
    pub x: u64,
    /// Row.
    pub y: u64,
    /// Samples per depth, indexed by occupancy.
    pub occupancy: Vec<u64>,
}

impl QueueReport {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("x", Json::Uint(self.x)),
            ("y", Json::Uint(self.y)),
            (
                "occupancy",
                Json::Array(self.occupancy.iter().map(|&n| Json::Uint(n)).collect()),
            ),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<QueueReport, SchemaError> {
        let occupancy = req(v, "occupancy")?
            .as_array()
            .ok_or_else(|| SchemaError::new("field `occupancy` must be an array"))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| SchemaError::new("occupancy entries must be integers"))
            })
            .collect::<Result<Vec<u64>, SchemaError>>()?;
        Ok(QueueReport {
            x: req_u64(v, "x")?,
            y: req_u64(v, "y")?,
            occupancy,
        })
    }
}

/// One specimen of a fault campaign: a single kernel run under a
/// single injected fault, with its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignEntry {
    /// Kernel the fault was injected into.
    pub kernel: String,
    /// The fault's stable label (e.g. `flip[bit=3,nth=1]@(4,2).West`).
    pub fault: String,
    /// Fault class (`flip`, `drop`, `dup`, `stick-valid`,
    /// `stick-ready`, `stall-domain`).
    pub class: String,
    /// Classified outcome: `detected` (checker reported a violation),
    /// `tolerated` (run completed with the reference result),
    /// `error` (a structured pipeline error), `undetected` (wrong
    /// result, no violation — a gate failure), or `abort` (a panic —
    /// a gate failure).
    pub outcome: String,
    /// Human-readable detail: the first violation or error text.
    pub detail: String,
    /// Number of protocol violations recorded.
    pub violations: u64,
}

impl CampaignEntry {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("fault", Json::Str(self.fault.clone())),
            ("class", Json::Str(self.class.clone())),
            ("outcome", Json::Str(self.outcome.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("violations", Json::Uint(self.violations)),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<CampaignEntry, SchemaError> {
        Ok(CampaignEntry {
            kernel: req_str(v, "kernel")?,
            fault: req_str(v, "fault")?,
            class: req_str(v, "class")?,
            outcome: req_str(v, "outcome")?,
            detail: req_str(v, "detail")?,
            violations: req_u64(v, "violations")?,
        })
    }
}

/// The schema-v2 fault-campaign section: seeded injection sweep
/// results aggregated over one or more kernels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CampaignSection {
    /// Campaign seed (fault plans are deterministic in it).
    pub seed: u64,
    /// False for the control leg (checker on, injector off).
    pub faults_enabled: bool,
    /// Specimens whose fault the checker detected.
    pub detected: u64,
    /// Specimens absorbed by the elastic protocol (reference result,
    /// no violation) — expected for handshake/timing faults.
    pub tolerated: u64,
    /// Specimens converted into structured pipeline errors.
    pub structured_errors: u64,
    /// Specimens that corrupted the result silently (gate failures).
    pub undetected: u64,
    /// Per-specimen records.
    pub entries: Vec<CampaignEntry>,
}

impl CampaignSection {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("seed", Json::Uint(self.seed)),
            ("faults_enabled", Json::Bool(self.faults_enabled)),
            ("detected", Json::Uint(self.detected)),
            ("tolerated", Json::Uint(self.tolerated)),
            ("structured_errors", Json::Uint(self.structured_errors)),
            ("undetected", Json::Uint(self.undetected)),
            (
                "entries",
                Json::Array(self.entries.iter().map(CampaignEntry::to_json).collect()),
            ),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<CampaignSection, SchemaError> {
        let entries = req(v, "entries")?
            .as_array()
            .ok_or_else(|| SchemaError::new("field `entries` must be an array"))?
            .iter()
            .map(CampaignEntry::from_json)
            .collect::<Result<Vec<CampaignEntry>, SchemaError>>()?;
        let faults_enabled = req(v, "faults_enabled")?
            .as_bool()
            .ok_or_else(|| SchemaError::new("field `faults_enabled` must be a boolean"))?;
        Ok(CampaignSection {
            seed: req_u64(v, "seed")?,
            faults_enabled,
            detected: req_u64(v, "detected")?,
            tolerated: req_u64(v, "tolerated")?,
            structured_errors: req_u64(v, "structured_errors")?,
            undetected: req_u64(v, "undetected")?,
            entries,
        })
    }
}

/// One evaluated design point of a DSE run: a per-node VF-mode string
/// (`R`/`N`/`S` per DFG node) with its analytical-model measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DsePointReport {
    /// Mode assignment, one letter per DFG node (`R`/`N`/`S`).
    pub modes: String,
    /// Iteration delay in nominal cycles (1/throughput).
    pub delay: f64,
    /// Normalized energy per iteration.
    pub energy: f64,
    /// Energy-delay product.
    pub edp: f64,
}

impl DsePointReport {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("modes", Json::Str(self.modes.clone())),
            ("delay", Json::Float(self.delay)),
            ("energy", Json::Float(self.energy)),
            ("edp", Json::Float(self.edp)),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<DsePointReport, SchemaError> {
        Ok(DsePointReport {
            modes: req_str(v, "modes")?,
            delay: req_f64(v, "delay")?,
            energy: req_f64(v, "energy")?,
            edp: req_f64(v, "edp")?,
        })
    }
}

/// The schema-v3 design-space-exploration section: what one
/// `uecgra dse` / `dse_sweep` search found for one kernel.
///
/// Cache hit/miss statistics are deliberately **not** part of the
/// section — they differ between cold and warm reruns, and the
/// acceptance contract requires the report bytes not to. Only
/// search-deterministic quantities appear here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DseSection {
    /// Search seed.
    pub seed: u64,
    /// `"exhaustive"` or `"hillclimb"`.
    pub strategy: String,
    /// Searchable power groups (chains, pseudo-op groups excluded).
    pub groups: u64,
    /// Unique-evaluation budget the search ran under.
    pub budget: u64,
    /// Candidate evaluations requested (memo hits included).
    pub evaluations: u64,
    /// Distinct assignments measured.
    pub unique_configs: u64,
    /// The greedy `power_map` baseline (better objective by EDP).
    pub baseline: DsePointReport,
    /// Pareto frontier over (delay, energy, EDP), sorted by delay.
    pub frontier: Vec<DsePointReport>,
    /// Minimum-EDP frontier member.
    pub best: DsePointReport,
    /// Frontier best EDP ≤ greedy baseline EDP (the dominance gate).
    pub dominates_baseline: bool,
}

impl DseSection {
    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("seed", Json::Uint(self.seed)),
            ("strategy", Json::Str(self.strategy.clone())),
            ("groups", Json::Uint(self.groups)),
            ("budget", Json::Uint(self.budget)),
            ("evaluations", Json::Uint(self.evaluations)),
            ("unique_configs", Json::Uint(self.unique_configs)),
            ("baseline", self.baseline.to_json()),
            (
                "frontier",
                Json::Array(self.frontier.iter().map(DsePointReport::to_json).collect()),
            ),
            ("best", self.best.to_json()),
            ("dominates_baseline", Json::Bool(self.dominates_baseline)),
        ])
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<DseSection, SchemaError> {
        let frontier = req(v, "frontier")?
            .as_array()
            .ok_or_else(|| SchemaError::new("field `frontier` must be an array"))?
            .iter()
            .map(DsePointReport::from_json)
            .collect::<Result<Vec<DsePointReport>, SchemaError>>()?;
        let dominates_baseline = req(v, "dominates_baseline")?
            .as_bool()
            .ok_or_else(|| SchemaError::new("field `dominates_baseline` must be a boolean"))?;
        Ok(DseSection {
            seed: req_u64(v, "seed")?,
            strategy: req_str(v, "strategy")?,
            groups: req_u64(v, "groups")?,
            budget: req_u64(v, "budget")?,
            evaluations: req_u64(v, "evaluations")?,
            unique_configs: req_u64(v, "unique_configs")?,
            baseline: DsePointReport::from_json(req(v, "baseline")?)?,
            frontier,
            best: DsePointReport::from_json(req(v, "best")?)?,
            dominates_baseline,
        })
    }
}

/// One run's full telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Report name (kernel run label or figure identifier).
    pub name: String,
    /// Kernel name, when the report describes a kernel execution.
    pub kernel: Option<String>,
    /// Policy label (`E-CGRA`, `UE-CGRA EOpt`, `UE-CGRA POpt`).
    pub policy: Option<String>,
    /// Mapping seed.
    pub seed: Option<u64>,
    /// Simulation engine (`dense` or `event`). Omitted by the
    /// reproduction binaries so their reports stay byte-identical
    /// across engines — the differential check depends on that.
    pub engine: Option<String>,
    /// Iterations completed (marker firings).
    pub iterations: u64,
    /// PLL ticks simulated.
    pub ticks: u64,
    /// Run length in nominal cycles.
    pub nominal_cycles: f64,
    /// Steady-state initiation interval in nominal cycles.
    pub ii: Option<f64>,
    /// Stop reason (`Quiesced`, `MarkerDone`, `TickLimit`).
    pub stop: String,
    /// Rising edges per clock domain over the whole run.
    pub domain_edges: [u64; 3],
    /// Rising edges per clock domain within the first hyperperiod
    /// (the exact-rational basis the measured clock-power path uses).
    pub domain_edges_hyper: [u64; 3],
    /// Clock-gateable idle edges summed per domain.
    pub domain_gated_ticks: [u64; 3],
    /// Per-PE activity (configured PEs only).
    pub pes: Vec<PeReport>,
    /// Per-PE queue-occupancy histograms.
    pub queues: Vec<QueueReport>,
    /// Wall-clock phase timings (omitted by reproduction binaries to
    /// keep their reports deterministic).
    pub timings: Option<PhaseTimings>,
    /// Free-form scalar metrics (figure binaries put their published
    /// numbers here).
    pub metrics: Vec<(String, f64)>,
    /// Schema-v2 fault-campaign results. Presence of this section is
    /// what bumps the serialized `schema_version` to 2; plain run
    /// reports stay at version 1 byte-for-byte.
    pub fault_campaign: Option<CampaignSection>,
    /// Schema-v3 design-space-exploration results. Presence of this
    /// section bumps the serialized `schema_version` to 3; reports
    /// without it keep their previous version byte-for-byte.
    pub dse: Option<DseSection>,
}

impl RunReport {
    /// Serialize to a [`Json`] value with the canonical field order.
    pub fn to_json(&self) -> Json {
        let version = if self.dse.is_some() {
            SCHEMA_VERSION_V3
        } else if self.fault_campaign.is_some() {
            SCHEMA_VERSION_V2
        } else {
            SCHEMA_VERSION
        };
        let mut fields: Vec<(String, Json)> = vec![
            ("schema_version".into(), Json::Uint(version)),
            ("name".into(), Json::Str(self.name.clone())),
        ];
        if let Some(kernel) = &self.kernel {
            fields.push(("kernel".into(), Json::Str(kernel.clone())));
        }
        if let Some(policy) = &self.policy {
            fields.push(("policy".into(), Json::Str(policy.clone())));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), Json::Uint(seed)));
        }
        if let Some(engine) = &self.engine {
            fields.push(("engine".into(), Json::Str(engine.clone())));
        }
        fields.push(("iterations".into(), Json::Uint(self.iterations)));
        fields.push(("ticks".into(), Json::Uint(self.ticks)));
        fields.push(("nominal_cycles".into(), Json::Float(self.nominal_cycles)));
        if let Some(ii) = self.ii {
            fields.push(("ii".into(), Json::Float(ii)));
        }
        fields.push(("stop".into(), Json::Str(self.stop.clone())));
        fields.push(("domain_edges".into(), domains_json(self.domain_edges)));
        fields.push((
            "domain_edges_hyper".into(),
            domains_json(self.domain_edges_hyper),
        ));
        fields.push((
            "domain_gated_ticks".into(),
            domains_json(self.domain_gated_ticks),
        ));
        fields.push((
            "pes".into(),
            Json::Array(self.pes.iter().map(PeReport::to_json).collect()),
        ));
        fields.push((
            "queues".into(),
            Json::Array(self.queues.iter().map(QueueReport::to_json).collect()),
        ));
        if let Some(t) = &self.timings {
            fields.push(("timings".into(), t.to_json()));
        }
        fields.push((
            "metrics".into(),
            Json::Object(
                self.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Float(*v)))
                    .collect(),
            ),
        ));
        if let Some(c) = &self.fault_campaign {
            fields.push(("fault_campaign".into(), c.to_json()));
        }
        if let Some(d) = &self.dse {
            fields.push(("dse".into(), d.to_json()));
        }
        Json::Object(fields)
    }

    /// Deserialize one report.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on missing fields, type mismatches,
    /// or an unknown schema version.
    pub fn from_json(v: &Json) -> Result<RunReport, SchemaError> {
        let version = req_u64(v, "schema_version")?;
        if !(SCHEMA_VERSION..=SCHEMA_VERSION_V3).contains(&version) {
            return Err(SchemaError::new(format!(
                "unsupported schema version {version} \
                 (expected {SCHEMA_VERSION} through {SCHEMA_VERSION_V3})"
            )));
        }
        let pes = req(v, "pes")?
            .as_array()
            .ok_or_else(|| SchemaError::new("field `pes` must be an array"))?
            .iter()
            .map(PeReport::from_json)
            .collect::<Result<Vec<PeReport>, SchemaError>>()?;
        let queues = req(v, "queues")?
            .as_array()
            .ok_or_else(|| SchemaError::new("field `queues` must be an array"))?
            .iter()
            .map(QueueReport::from_json)
            .collect::<Result<Vec<QueueReport>, SchemaError>>()?;
        let timings = match v.get("timings") {
            None | Some(Json::Null) => None,
            Some(t) => Some(PhaseTimings::from_json(t)?),
        };
        let metrics = match v.get("metrics") {
            None => Vec::new(),
            Some(Json::Object(fields)) => fields
                .iter()
                .map(|(k, x)| {
                    x.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| SchemaError::new(format!("metric `{k}` must be a number")))
                })
                .collect::<Result<Vec<(String, f64)>, SchemaError>>()?,
            Some(_) => return Err(SchemaError::new("field `metrics` must be an object")),
        };
        let fault_campaign = match v.get("fault_campaign") {
            None | Some(Json::Null) => None,
            Some(c) => Some(CampaignSection::from_json(c)?),
        };
        let dse = match v.get("dse") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DseSection::from_json(d)?),
        };
        Ok(RunReport {
            name: req_str(v, "name")?,
            kernel: opt_str(v, "kernel")?,
            policy: opt_str(v, "policy")?,
            seed: opt_u64(v, "seed")?,
            engine: opt_str(v, "engine")?,
            iterations: req_u64(v, "iterations")?,
            ticks: req_u64(v, "ticks")?,
            nominal_cycles: req_f64(v, "nominal_cycles")?,
            ii: opt_f64(v, "ii")?,
            stop: req_str(v, "stop")?,
            domain_edges: domains_from(v, "domain_edges")?,
            domain_edges_hyper: domains_from(v, "domain_edges_hyper")?,
            domain_gated_ticks: domains_from(v, "domain_gated_ticks")?,
            pes,
            queues,
            timings,
            metrics,
            fault_campaign,
            dse,
        })
    }

    /// Serialize a batch of reports as the JSON document every
    /// `--json` flag writes: an array, even for a single run.
    pub fn render_all(reports: &[RunReport]) -> String {
        Json::Array(reports.iter().map(RunReport::to_json).collect()).render()
    }

    /// Parse a `--json` document back into reports.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] on malformed JSON or schema
    /// mismatches.
    pub fn parse_all(text: &str) -> Result<Vec<RunReport>, SchemaError> {
        let doc = Json::parse(text)?;
        doc.as_array()
            .ok_or_else(|| SchemaError::new("a report document must be a JSON array"))?
            .iter()
            .map(RunReport::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            name: "dither/POpt".into(),
            kernel: Some("dither".into()),
            policy: Some("UE-CGRA POpt".into()),
            seed: Some(7),
            engine: None,
            iterations: 60,
            ticks: 1234,
            nominal_cycles: 411.5,
            ii: Some(3.25),
            stop: "Quiesced".into(),
            domain_edges: [137, 411, 617],
            domain_edges_hyper: [2, 6, 9],
            domain_gated_ticks: [10, 20, 30],
            pes: vec![PeReport {
                x: 1,
                y: 2,
                op: "add".into(),
                mode: "sprint".into(),
                rising_edges: 100,
                fires: 60,
                bypass_tokens: 3,
                fire_edges: 61,
                operand_stall_edges: 20,
                suppressed_stall_edges: 9,
                backpressure_stall_edges: 5,
                gated_ticks: 5,
                input_stalls: 31,
                output_stalls: 6,
                sram_accesses: 0,
            }],
            queues: vec![QueueReport {
                x: 1,
                y: 2,
                occupancy: vec![300, 80, 20],
            }],
            timings: None,
            metrics: vec![("speedup".into(), 1.44)],
            fault_campaign: None,
            dse: None,
        }
    }

    fn sample_dse_section() -> DseSection {
        let best = DsePointReport {
            modes: "SSNNR".into(),
            delay: 2.0,
            energy: 3.5,
            edp: 7.0,
        };
        DseSection {
            seed: 7,
            strategy: "hillclimb".into(),
            groups: 4,
            budget: 256,
            evaluations: 300,
            unique_configs: 212,
            baseline: DsePointReport {
                modes: "SSNNN".into(),
                delay: 2.0,
                energy: 4.0,
                edp: 8.0,
            },
            frontier: vec![
                best.clone(),
                DsePointReport {
                    modes: "NNNNR".into(),
                    delay: 3.0,
                    energy: 2.5,
                    edp: 7.5,
                },
            ],
            best,
            dominates_baseline: true,
        }
    }

    #[test]
    fn report_round_trips_exactly() {
        let report = sample_report();
        let text = RunReport::render_all(std::slice::from_ref(&report));
        let back = RunReport::parse_all(&text).unwrap();
        assert_eq!(back, vec![report]);
        assert_eq!(RunReport::render_all(&back), text);
    }

    #[test]
    fn golden_serialization_shape() {
        // A compact golden of the serializer's field order and layout;
        // the full-run golden lives in `uecgra-core`'s snapshot test.
        let mut report = sample_report();
        report.pes.clear();
        report.queues.clear();
        report.metrics.clear();
        let expected = "\
{
  \"schema_version\": 1,
  \"name\": \"dither/POpt\",
  \"kernel\": \"dither\",
  \"policy\": \"UE-CGRA POpt\",
  \"seed\": 7,
  \"iterations\": 60,
  \"ticks\": 1234,
  \"nominal_cycles\": 411.5,
  \"ii\": 3.25,
  \"stop\": \"Quiesced\",
  \"domain_edges\": {
    \"rest\": 137,
    \"nominal\": 411,
    \"sprint\": 617
  },
  \"domain_edges_hyper\": {
    \"rest\": 2,
    \"nominal\": 6,
    \"sprint\": 9
  },
  \"domain_gated_ticks\": {
    \"rest\": 10,
    \"nominal\": 20,
    \"sprint\": 30
  },
  \"pes\": [],
  \"queues\": [],
  \"metrics\": {}
}
";
        assert_eq!(report.to_json().render(), expected);
    }

    #[test]
    fn engine_tag_round_trips_and_is_omitted_when_none() {
        let mut report = sample_report();
        assert!(
            !report.to_json().render().contains("engine"),
            "a None engine must leave the rendering untouched"
        );
        report.engine = Some("event".into());
        let text = RunReport::render_all(std::slice::from_ref(&report));
        assert!(text.contains("\"engine\": \"event\""));
        let back = RunReport::parse_all(&text).unwrap();
        assert_eq!(back[0].engine.as_deref(), Some("event"));
    }

    #[test]
    fn conservation_helper_checks_partition() {
        let pe = sample_report().pes.remove(0);
        assert!(pe.conserves_edges());
        let broken = PeReport {
            gated_ticks: 4,
            ..pe
        };
        assert!(!broken.conserves_edges());
    }

    #[test]
    fn timings_round_trip_and_total() {
        let t = PhaseTimings {
            parse_ns: 1,
            lower_ns: 2,
            place_route_ns: 30,
            power_map_ns: 4,
            assemble_ns: 5,
            simulate_ns: 600,
        };
        assert_eq!(t.total_ns(), 642);
        let back = PhaseTimings::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn fault_campaign_section_round_trips_at_v2() {
        let mut report = sample_report();
        report.fault_campaign = Some(CampaignSection {
            seed: 99,
            faults_enabled: true,
            detected: 3,
            tolerated: 2,
            structured_errors: 1,
            undetected: 0,
            entries: vec![CampaignEntry {
                kernel: "llist".into(),
                fault: "drop[nth=2]@(4,2).West".into(),
                class: "drop".into(),
                outcome: "detected".into(),
                detail: "protocol violation `token-loss`".into(),
                violations: 1,
            }],
        });
        let text = RunReport::render_all(std::slice::from_ref(&report));
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        assert!(text.contains("\"fault_campaign\""));
        let back = RunReport::parse_all(&text).unwrap();
        assert_eq!(back, vec![report]);
        assert_eq!(RunReport::render_all(&back), text);
    }

    #[test]
    fn plain_reports_stay_at_version_1() {
        // The v2/v3 sections are additive: a report without them must
        // render exactly as it did before the sections existed.
        let text = sample_report().to_json().render();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(!text.contains("fault_campaign"));
        assert!(!text.contains("\"dse\""));
    }

    #[test]
    fn dse_section_round_trips_at_v3() {
        let mut report = sample_report();
        report.dse = Some(sample_dse_section());
        let text = RunReport::render_all(std::slice::from_ref(&report));
        assert!(text.contains("\"schema_version\": 3"), "{text}");
        assert!(text.contains("\"dse\""));
        assert!(text.contains("\"dominates_baseline\": true"));
        let back = RunReport::parse_all(&text).unwrap();
        assert_eq!(back, vec![report]);
        assert_eq!(RunReport::render_all(&back), text);
    }

    #[test]
    fn fault_campaign_alone_still_stamps_version_2() {
        // v3 is stamped only when the dse section is present, so v2
        // documents keep their bytes.
        let mut report = sample_report();
        report.fault_campaign = Some(CampaignSection::default());
        let text = report.to_json().render();
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        report.dse = Some(sample_dse_section());
        let both = report.to_json().render();
        assert!(both.contains("\"schema_version\": 3"), "{both}");
        let back = RunReport::parse_all(&format!("[{both}]")).unwrap();
        assert_eq!(back[0], report);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut json = sample_report().to_json();
        if let Json::Object(fields) = &mut json {
            fields[0].1 = Json::Uint(99);
        }
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.message.contains("schema version"));
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = RunReport::from_json(&Json::object(vec![(
            "schema_version",
            Json::Uint(SCHEMA_VERSION),
        )]))
        .unwrap_err();
        assert!(err.message.contains('`'), "{err}");
    }
}

//! Structured telemetry for UE-CGRA runs (`uecgra-probe`).
//!
//! The evaluation harnesses used to expose per-PE activity only as
//! formatted `println!` rows; downstream power/timing comparison
//! (and regeneration of the paper's Tables I–III) needs the same
//! numbers machine-readable. This crate provides the three pieces,
//! with **zero external dependencies** (the build containers have no
//! registry access):
//!
//! * [`json`] — a minimal, deterministic JSON value type with a
//!   writer and a parser. Objects preserve insertion order, so a
//!   serialized report is byte-stable; the parser exists so consumers
//!   (and CI) can round-trip-validate reports without `serde`.
//! * [`schema`] — the report types: [`RunReport`] (one compiled and
//!   executed kernel, or one figure computation), [`PeReport`]
//!   (per-PE activity with edge-classified stall attribution),
//!   [`QueueReport`] (input-queue occupancy histograms) and
//!   [`PhaseTimings`] (wall-clock pipeline phases).
//! * [`sink`] — the [`ProbeSink`] observer trait the pipeline reports
//!   phase timings through, plus [`TimingSink`], the collector that
//!   turns callbacks into a [`PhaseTimings`].
//!
//! # Determinism contract
//!
//! Everything in a [`RunReport`] except [`PhaseTimings`] is a pure
//! function of the run inputs, and the serializer is byte-stable, so
//! reports obey the workspace determinism contract (DESIGN.md §9):
//! serialized reports are bit-identical for any `UECGRA_THREADS`
//! setting. Wall-clock timings are inherently nondeterministic, which
//! is why they are optional and omitted from `None`-timed reports
//! (the reproduction binaries emit none; the interactive CLI does).

#![warn(missing_docs)]

pub mod json;
pub mod schema;
pub mod sink;

pub use json::{Json, JsonError};
pub use schema::{
    CampaignEntry, CampaignSection, DsePointReport, DseSection, PeReport, PhaseTimings,
    QueueReport, RunReport, SchemaError, SCHEMA_VERSION, SCHEMA_VERSION_V2, SCHEMA_VERSION_V3,
};
pub use sink::{Phase, ProbeSink, TimingSink};

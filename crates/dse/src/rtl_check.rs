//! Opt-in RTL cross-check of a DSE design point.
//!
//! The explorer scores candidates with the analytical model only; this
//! module re-validates a chosen assignment on the cycle-level fabric by
//! reusing the differential oracle: place-and-route the kernel,
//! assemble the bitstream with the candidate's modes, execute on
//! **both** engines (dense reference stepper and event-driven), and
//! require bit-identical activity plus a final memory image matching
//! the kernel's host reference. This is the `--rtl-check` leg of
//! `dse_sweep` — too slow for the inner search loop, exactly right for
//! the frontier members the search actually recommends.

use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_dfg::Kernel;
use uecgra_rtl::{Activity, Engine, Fabric, FabricConfig};

/// Run `node_modes` through the full pipeline on both engines and
/// check them against each other and the host reference.
///
/// # Errors
///
/// Returns a description of the first failure: mapping, bitstream
/// assembly or validation, an engine divergence, or a wrong result.
pub fn rtl_crosscheck(kernel: &Kernel, node_modes: &[VfMode], seed: u64) -> Result<(), String> {
    if node_modes.len() != kernel.dfg.node_count() {
        return Err(format!(
            "{}: {} modes for {} nodes",
            kernel.name,
            node_modes.len(),
            kernel.dfg.node_count()
        ));
    }
    let mapped = MappedKernel::map(&kernel.dfg, ArrayShape::default(), seed)
        .map_err(|e| format!("{}: mapping failed: {e:?}", kernel.name))?;
    let bitstream = Bitstream::assemble(&kernel.dfg, &mapped, node_modes)
        .map_err(|e| format!("{}: assembly failed: {e:?}", kernel.name))?;
    bitstream
        .validate()
        .map_err(|e| format!("{}: bitstream invalid: {e:?}", kernel.name))?;

    let run = |engine: Engine| -> Activity {
        let config = FabricConfig {
            marker: Some(mapped.coord_of(kernel.iter_marker)),
            ..FabricConfig::default()
        };
        Fabric::new(&bitstream, kernel.mem.clone(), config).run_with(engine)
    };
    let dense = run(Engine::Dense);
    let event = run(Engine::EventDriven);

    // Differential oracle: the engines are bit-identical by contract.
    if dense.ticks != event.ticks
        || dense.marker_times != event.marker_times
        || dense.fires != event.fires
        || dense.mem != event.mem
    {
        return Err(format!(
            "{}: engine divergence (dense {} ticks / {} iters, event {} ticks / {} iters)",
            kernel.name,
            dense.ticks,
            dense.iterations(),
            event.ticks,
            event.iterations()
        ));
    }

    let expect = kernel.reference_memory();
    if dense.mem[..expect.len()] != expect[..] {
        return Err(format!(
            "{}: wrong result under modes {:?}",
            kernel.name, node_modes
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    #[test]
    fn nominal_assignment_passes_the_crosscheck() {
        let k = kernels::llist::build_with_hops(40);
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        rtl_crosscheck(&k, &modes, 7).unwrap();
    }

    #[test]
    fn wrong_length_assignment_fails_loudly() {
        let k = kernels::llist::build_with_hops(40);
        assert!(rtl_crosscheck(&k, &[VfMode::Nominal], 7).is_err());
    }
}

//! The design-space explorer.
//!
//! [`explore`] searches per-group VF-mode assignments of one kernel
//! through the analytical model, memoizing every measurement in an
//! [`EvalCache`] and returning the Pareto frontier over
//! (delay, energy, EDP).
//!
//! Search space and strategies:
//!
//! * The space is grouped exactly like the paper's power-mapping pass
//!   ([`Grouping::chains`]): singly-connected chains share one mode and
//!   pseudo-op groups stay nominal, so `G` groups give `3^G`
//!   assignments instead of `3^N`.
//! * When `3^G` fits the evaluation budget the explorer enumerates the
//!   whole space (**exhaustive** — exact frontier).
//! * Otherwise it runs a greedy **hill-climb** with SplitMix64 random
//!   restarts: each restart starts from a seeded random assignment and
//!   walks single-group mode changes while they improve that restart's
//!   scalar objective (restarts cycle through EDP / delay / energy, so
//!   the walk pressure covers both ends of the frontier).
//! * Both strategies first evaluate the three uniform assignments and
//!   the paper's greedy `power_map` result under both objectives.
//!   Seeding the evaluated set with the greedy baseline makes the
//!   dominance acceptance criterion structural: the frontier's best
//!   EDP can never be worse than the baseline it contains.
//!
//! Every decision runs on the calling thread over *batches* of
//! candidate evaluations; only the batched model simulations fan out
//! through [`uecgra_util::par_tabulate`]. Measurements are pure
//! functions of the configuration, so the search trajectory — and the
//! returned [`DseOutcome`] — is bit-identical across thread counts
//! *and* across cold vs warm caches (a warm cache changes wall-clock,
//! never values).

use crate::cache::EvalCache;
use crate::key::{combine, digest_bytes, digest_json, Digest};
use crate::pareto::{modes_string, pareto_frontier, DsePoint};
use std::collections::HashMap;
use uecgra_clock::VfMode;
use uecgra_dfg::analysis::Grouping;
use uecgra_dfg::{Dfg, NodeId};
use uecgra_model::{EnergyDelay, EnergyDelayEstimator, ModelParams};
use uecgra_probe::Json;
use uecgra_util::SplitMix64;

/// Explorer knobs. [`Default`] matches the CLI defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseConfig {
    /// PRNG seed for the hill-climb restarts.
    pub seed: u64,
    /// Maximum *unique* model evaluations; also the exhaustive-
    /// enumeration threshold (`3^G <= budget` enumerates).
    pub budget: usize,
    /// Hill-climb restarts (ignored by the exhaustive strategy).
    pub restarts: usize,
    /// Measurement window forwarded to the estimator.
    pub iterations: u64,
}

impl Default for DseConfig {
    fn default() -> DseConfig {
        DseConfig {
            seed: 7,
            budget: 256,
            restarts: 6,
            iterations: 96,
        }
    }
}

/// What one [`explore`] call found.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// `"exhaustive"` or `"hillclimb"`.
    pub strategy: &'static str,
    /// Searchable (non-pseudo) power groups.
    pub groups: usize,
    /// Candidate evaluations requested (cache hits included).
    pub evaluations: u64,
    /// Distinct assignments measured.
    pub unique_configs: u64,
    /// The greedy `power_map` baseline (better of the two objectives
    /// by EDP).
    pub baseline: DsePoint,
    /// The Pareto frontier over everything evaluated, sorted by delay.
    pub frontier: Vec<DsePoint>,
    /// The minimum-EDP frontier member.
    pub best: DsePoint,
}

impl DseOutcome {
    /// Does the frontier's best EDP dominate or match the greedy
    /// baseline? Structurally always true (the baseline is in the
    /// evaluated set); kept as data so harnesses can assert it.
    pub fn dominates_baseline(&self) -> bool {
        self.best.edp() <= self.baseline.edp()
    }

    /// The outcome as a probe schema-v3 report section. Only search-
    /// deterministic quantities cross over — cache hit statistics stay
    /// out so reports are byte-identical across cold and warm caches.
    pub fn report_section(&self, cfg: &DseConfig) -> uecgra_probe::DseSection {
        let point = |p: &DsePoint| uecgra_probe::DsePointReport {
            modes: p.modes_string(),
            delay: p.delay(),
            energy: p.energy(),
            edp: p.edp(),
        };
        uecgra_probe::DseSection {
            seed: cfg.seed,
            strategy: self.strategy.to_string(),
            groups: self.groups as u64,
            budget: cfg.budget as u64,
            evaluations: self.evaluations,
            unique_configs: self.unique_configs,
            baseline: point(&self.baseline),
            frontier: self.frontier.iter().map(point).collect(),
            best: point(&self.best),
            dominates_baseline: self.dominates_baseline(),
        }
    }
}

/// Digest the full evaluation configuration — everything the
/// analytical model can observe besides the mode assignment. Combined
/// with a per-candidate modes digest this forms the cache key, so any
/// observable config change invalidates by construction.
pub fn config_digest(
    dfg: &Dfg,
    mem: &[u32],
    marker: NodeId,
    extra_hops: &[u32],
    params: &ModelParams,
    iterations: u64,
) -> Digest {
    let nodes: Vec<Json> = dfg
        .nodes()
        .map(|(_, n)| {
            Json::object(vec![
                ("op", Json::Str(n.op.mnemonic().into())),
                ("constant", opt_u32(n.constant)),
                ("init", opt_u32(n.init)),
            ])
        })
        .collect();
    let edges: Vec<Json> = dfg
        .edges()
        .map(|(_, e)| {
            Json::Array(vec![
                Json::Uint(e.src.index() as u64),
                Json::Uint(e.src_port as u64),
                Json::Uint(e.dst.index() as u64),
                Json::Uint(e.dst_port as u64),
            ])
        })
        .collect();
    // The memory image can be tens of KiB; fold it to its own digest
    // rather than embedding every word in the JSON description.
    let mem_bytes: Vec<u8> = mem.iter().flat_map(|w| w.to_le_bytes()).collect();
    let doc = Json::object(vec![
        (
            "clocks",
            Json::Array(
                [VfMode::Rest, VfMode::Nominal, VfMode::Sprint]
                    .iter()
                    .map(|&m| Json::Uint(params.clocks.divisor(m) as u64))
                    .collect(),
            ),
        ),
        ("edges", Json::Array(edges)),
        (
            "extra_hops",
            Json::Array(extra_hops.iter().map(|&h| Json::Uint(h as u64)).collect()),
        ),
        ("iterations", Json::Uint(iterations)),
        ("marker", Json::Uint(marker.index() as u64)),
        ("mem", Json::Str(digest_bytes(&mem_bytes).to_string())),
        ("nodes", Json::Array(nodes)),
        (
            "params",
            Json::object(vec![
                ("alpha_sram", Json::Float(params.alpha_sram)),
                ("beta", Json::Float(params.beta)),
                ("f_nominal_mhz", Json::Float(params.f_nominal_mhz)),
                ("gamma", Json::Float(params.gamma)),
                ("k1", Json::Float(params.vf.k1)),
                ("k2", Json::Float(params.vf.k2)),
                ("k3", Json::Float(params.vf.k3)),
                (
                    "voltages",
                    Json::Array(params.voltages.iter().map(|&v| Json::Float(v)).collect()),
                ),
            ]),
        ),
    ]);
    digest_json(&doc)
}

fn opt_u32(v: Option<u32>) -> Json {
    match v {
        None => Json::Null,
        Some(x) => Json::Uint(x as u64),
    }
}

/// The cache key of one candidate: config digest ⊕ modes digest.
pub fn candidate_key(config: Digest, modes: &[VfMode]) -> Digest {
    combine(config, digest_bytes(modes_string(modes).as_bytes()))
}

/// Cache-mediated batch evaluator. All bookkeeping runs on the calling
/// thread; only the missing measurements fan out.
struct Evaluator<'a> {
    estimator: EnergyDelayEstimator<'a>,
    config: Digest,
    cache: &'a EvalCache,
    evaluations: u64,
    unique: std::collections::HashSet<u128>,
}

impl<'a> Evaluator<'a> {
    /// Evaluate a batch of candidates, in order. Duplicate candidates
    /// within the batch and cache hits cost nothing; unique misses are
    /// measured in parallel and inserted into the cache.
    fn eval_batch(&mut self, candidates: &[Vec<VfMode>]) -> Vec<EnergyDelay> {
        let keys: Vec<Digest> = candidates
            .iter()
            .map(|m| candidate_key(self.config, m))
            .collect();
        self.evaluations += keys.len() as u64;

        let mut batch: HashMap<u128, EnergyDelay> = HashMap::new();
        let mut misses: Vec<(Digest, &Vec<VfMode>)> = Vec::new();
        for (key, modes) in keys.iter().zip(candidates) {
            if batch.contains_key(&key.as_u128()) {
                continue; // duplicate within this batch
            }
            self.unique.insert(key.as_u128());
            match self.cache.lookup(*key) {
                Some(ed) => {
                    batch.insert(key.as_u128(), ed);
                }
                None => {
                    batch.insert(key.as_u128(), PLACEHOLDER);
                    misses.push((*key, modes));
                }
            }
        }
        let measured =
            uecgra_util::par_tabulate(misses.len(), |i| self.estimator.measure(misses[i].1));
        for ((key, _), ed) in misses.iter().zip(measured) {
            self.cache.insert(*key, ed);
            batch.insert(key.as_u128(), ed);
        }
        keys.iter().map(|k| batch[&k.as_u128()]).collect()
    }

    fn unique_len(&self) -> usize {
        self.unique.len()
    }
}

/// Sentinel overwritten before the batch returns; never observable.
const PLACEHOLDER: EnergyDelay = EnergyDelay {
    throughput: f64::NAN,
    energy_per_iter: f64::NAN,
};

/// The scalar objective a hill-climb restart minimizes. Restarts cycle
/// through all three so the walk covers both frontier ends, not just
/// the EDP knee.
#[derive(Clone, Copy)]
enum Scalar {
    Edp,
    Delay,
    Energy,
}

impl Scalar {
    const ALL: [Scalar; 3] = [Scalar::Edp, Scalar::Delay, Scalar::Energy];

    /// Lexicographic cost: the primary axis, EDP as the tie-break.
    fn cost(self, ed: &EnergyDelay) -> (f64, f64) {
        let edp = ed.edp();
        match self {
            Scalar::Edp => (edp, edp),
            Scalar::Delay => (1.0 / ed.throughput, edp),
            Scalar::Energy => (ed.energy_per_iter, edp),
        }
    }
}

fn cost_lt(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Explore VF-mode assignments of `dfg` and return the Pareto
/// frontier, the greedy baseline, and the search statistics.
///
/// `extra_hops` carries routed per-edge bypass hops (empty for the
/// logical graph), exactly as
/// [`power_map_routed`](uecgra_compiler::power_map::power_map_routed)
/// takes them. Measurements go through `cache`; pass a freshly loaded
/// cache for warm reruns.
///
/// # Panics
///
/// Panics if a candidate mapping reaches no steady state within the
/// measurement window (same contract as `EnergyDelayEstimator`).
pub fn explore(
    dfg: &Dfg,
    mem: Vec<u32>,
    marker: NodeId,
    extra_hops: &[u32],
    cfg: &DseConfig,
    cache: &EvalCache,
) -> DseOutcome {
    use uecgra_compiler::power_map::{power_map_routed, Objective};

    // Grouping, exactly as the greedy pass groups (phase 1).
    let grouping = Grouping::chains(dfg);
    let groups: Vec<usize> = (0..grouping.len())
        .filter(|&g| {
            grouping
                .members(g)
                .iter()
                .all(|&n| !dfg.node(n).op.is_pseudo())
        })
        .collect();
    let expand = |assignment: &[VfMode]| -> Vec<VfMode> {
        let mut modes = vec![VfMode::Nominal; dfg.node_count()];
        for (slot, &g) in groups.iter().enumerate() {
            for &n in grouping.members(g) {
                modes[n.index()] = assignment[slot];
            }
        }
        modes
    };
    // Project a per-node assignment into group space (greedy results
    // are constant per group by construction).
    let project = |node_modes: &[VfMode]| -> Vec<VfMode> {
        groups
            .iter()
            .map(|&g| node_modes[grouping.members(g)[0].index()])
            .collect()
    };

    let estimator = EnergyDelayEstimator::new(dfg, mem.clone(), marker)
        .with_edge_latency(extra_hops.to_vec())
        .with_iterations(cfg.iterations);
    let config = config_digest(
        dfg,
        &mem,
        marker,
        extra_hops,
        estimator.params(),
        cfg.iterations,
    );
    let mut ev = Evaluator {
        estimator,
        config,
        cache,
        evaluations: 0,
        unique: std::collections::HashSet::new(),
    };

    let mut evaluated: Vec<DsePoint> = Vec::new();
    let mut record = |assignments: &[Vec<VfMode>], ev: &mut Evaluator<'_>| -> Vec<EnergyDelay> {
        let node_modes: Vec<Vec<VfMode>> = assignments.iter().map(|a| expand(a)).collect();
        let eds = ev.eval_batch(&node_modes);
        for (modes, &ed) in node_modes.iter().zip(&eds) {
            evaluated.push(DsePoint {
                modes: modes.clone(),
                ed,
            });
        }
        eds
    };

    // Seed round: uniform assignments + the greedy baselines.
    let greedy: Vec<Vec<VfMode>> = [Objective::Performance, Objective::Energy]
        .iter()
        .map(|&obj| {
            project(&power_map_routed(dfg, mem.clone(), marker, obj, extra_hops).node_modes)
        })
        .collect();
    let mut seeds: Vec<Vec<VfMode>> = VfMode::ALL.iter().map(|&m| vec![m; groups.len()]).collect();
    seeds.extend(greedy.iter().cloned());
    let seed_eds = record(&seeds, &mut ev);
    // The better greedy result (by EDP) is the baseline DSE must beat.
    let baseline = greedy
        .iter()
        .zip(&seed_eds[VfMode::ALL.len()..])
        .map(|(a, &ed)| DsePoint {
            modes: expand(a),
            ed,
        })
        .min_by(|a, b| {
            a.edp()
                .partial_cmp(&b.edp())
                .expect("finite EDP")
                .then_with(|| a.modes_string().cmp(&b.modes_string()))
        })
        .expect("two greedy baselines");

    let space: Option<usize> = 3usize.checked_pow(groups.len() as u32);
    let strategy = match space {
        Some(s) if s <= cfg.budget => "exhaustive",
        _ => "hillclimb",
    };

    if strategy == "exhaustive" {
        // Odometer over VfMode::ALL (slowest-first), whole space in
        // one parallel batch.
        let space = space.expect("small space");
        let all: Vec<Vec<VfMode>> = (0..space)
            .map(|mut i| {
                (0..groups.len())
                    .map(|_| {
                        let m = VfMode::ALL[i % 3];
                        i /= 3;
                        m
                    })
                    .collect()
            })
            .collect();
        record(&all, &mut ev);
    } else {
        for restart in 0..cfg.restarts {
            if ev.unique_len() >= cfg.budget {
                break;
            }
            let objective = Scalar::ALL[restart % Scalar::ALL.len()];
            let mut rng = SplitMix64::seed_from_u64(
                cfg.seed ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut current: Vec<VfMode> = (0..groups.len())
                .map(|_| VfMode::ALL[rng.range(3)])
                .collect();
            let mut current_cost = objective.cost(&record(&[current.clone()], &mut ev)[0]);
            loop {
                if ev.unique_len() >= cfg.budget {
                    break;
                }
                // All single-group mode changes, evaluated as one batch.
                let mut neighbors: Vec<Vec<VfMode>> = Vec::new();
                for slot in 0..groups.len() {
                    for &m in &VfMode::ALL {
                        if m != current[slot] {
                            let mut n = current.clone();
                            n[slot] = m;
                            neighbors.push(n);
                        }
                    }
                }
                let eds = record(&neighbors, &mut ev);
                let best = neighbors
                    .iter()
                    .zip(&eds)
                    .map(|(n, ed)| (n, objective.cost(ed)))
                    .min_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .expect("finite cost")
                            .then_with(|| modes_string(a.0).cmp(&modes_string(b.0)))
                    });
                match best {
                    Some((n, cost)) if cost_lt(cost, current_cost) => {
                        current = n.clone();
                        current_cost = cost;
                    }
                    _ => break, // local optimum for this objective
                }
            }
        }
    }

    let frontier = pareto_frontier(&evaluated);
    let best = frontier
        .iter()
        .min_by(|a, b| {
            a.edp()
                .partial_cmp(&b.edp())
                .expect("finite EDP")
                .then_with(|| a.modes_string().cmp(&b.modes_string()))
        })
        .expect("non-empty frontier")
        .clone();
    DseOutcome {
        strategy,
        groups: groups.len(),
        evaluations: ev.evaluations,
        unique_configs: ev.unique.len() as u64,
        baseline,
        frontier,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::synthetic;

    fn run(cfg: &DseConfig) -> DseOutcome {
        let toy = synthetic::fig2_toy();
        let cache = EvalCache::new();
        explore(&toy.dfg, vec![0; 2048], toy.iter_marker, &[], cfg, &cache)
    }

    #[test]
    fn small_fabrics_enumerate_exhaustively() {
        let out = run(&DseConfig::default());
        assert_eq!(out.strategy, "exhaustive");
        assert!(out.dominates_baseline());
        assert!(!out.frontier.is_empty());
        assert!(out.unique_configs <= out.evaluations);
        // The whole 3^G space plus seeds was requested.
        assert_eq!(out.unique_configs, 3u64.pow(out.groups as u32));
    }

    #[test]
    fn tight_budgets_fall_back_to_hill_climb() {
        let cfg = DseConfig {
            budget: 20,
            restarts: 2,
            ..DseConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.strategy, "hillclimb");
        assert!(out.dominates_baseline(), "baseline seeding guarantees this");
    }

    #[test]
    fn exploration_is_deterministic_and_cache_transparent() {
        let toy = synthetic::fig2_toy();
        let cfg = DseConfig::default();
        let cache = EvalCache::new();
        let cold = explore(&toy.dfg, vec![0; 2048], toy.iter_marker, &[], &cfg, &cache);
        // Same cache now warm: every value identical, fewer misses.
        let warm = explore(&toy.dfg, vec![0; 2048], toy.iter_marker, &[], &cfg, &cache);
        assert_eq!(cold, warm);
        assert_eq!(cache.misses(), cold.unique_configs);
    }

    #[test]
    fn config_digest_distinguishes_observable_changes() {
        let toy = synthetic::fig2_toy();
        let params = uecgra_model::ModelParams::default();
        let base = config_digest(&toy.dfg, &[0; 16], toy.iter_marker, &[], &params, 96);
        let other_mem = config_digest(&toy.dfg, &[1; 16], toy.iter_marker, &[], &params, 96);
        let other_iters = config_digest(&toy.dfg, &[0; 16], toy.iter_marker, &[], &params, 48);
        let other_hops = config_digest(&toy.dfg, &[0; 16], toy.iter_marker, &[1], &params, 96);
        assert_ne!(base, other_mem);
        assert_ne!(base, other_iters);
        assert_ne!(base, other_hops);
        // And it is stable across calls.
        assert_eq!(
            base,
            config_digest(&toy.dfg, &[0; 16], toy.iter_marker, &[], &params, 96)
        );
    }
}

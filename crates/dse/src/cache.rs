//! The memoized evaluation cache.
//!
//! An [`EvalCache`] maps a canonical [`Digest`] of one
//! `(configuration, mode assignment)` pair to its measured
//! [`EnergyDelay`]. The explorer consults it before every analytical-
//! model simulation, so revisited assignments (hill-climb backtracks,
//! restart overlap, the greedy baseline's trajectory) cost a hash
//! lookup instead of a simulation.
//!
//! The cache also persists: [`EvalCache::save`] serializes every
//! entry with the `uecgra-probe` canonical JSON writer, entries
//! sorted by key, floats in shortest-round-trip form — so the file's
//! bytes are a pure function of its contents (no insertion-order or
//! thread-count residue), a warm rerun re-reads *exactly* the floats
//! it wrote, and re-saving an unchanged cache rewrites identical
//! bytes.

use crate::key::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use uecgra_model::EnergyDelay;
use uecgra_probe::Json;

/// Version stamp of the on-disk cache format.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// In-memory (optionally disk-backed) memo table keyed by canonical
/// digests.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: Mutex<HashMap<u128, (Digest, EnergyDelay)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Look up a key, counting a hit or a miss.
    pub fn lookup(&self, key: Digest) -> Option<EnergyDelay> {
        let found = self
            .entries
            .lock()
            .expect("cache lock")
            .get(&key.as_u128())
            .map(|&(_, ed)| ed);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert (or overwrite — measurements are deterministic, so a
    /// duplicate insert always carries the same value).
    pub fn insert(&self, key: Digest, value: EnergyDelay) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key.as_u128(), (key, value));
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when no entry is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction of all lookups so far (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Serialize to the canonical on-disk document (entries sorted by
    /// key, so the rendering is independent of insertion order).
    pub fn to_json(&self) -> Json {
        let mut rows: Vec<(Digest, EnergyDelay)> = self
            .entries
            .lock()
            .expect("cache lock")
            .values()
            .copied()
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        Json::object(vec![
            ("cache_format_version", Json::Uint(CACHE_FORMAT_VERSION)),
            (
                "entries",
                Json::Object(
                    rows.into_iter()
                        .map(|(k, ed)| {
                            (
                                k.to_string(),
                                Json::object(vec![
                                    ("energy_per_iter", Json::Float(ed.energy_per_iter)),
                                    ("throughput", Json::Float(ed.throughput)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write the cache to `path` in canonical form.
    ///
    /// # Errors
    ///
    /// Returns the I/O error text.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json().render()).map_err(|e| format!("writing {path}: {e}"))
    }

    /// Parse a cache document previously produced by [`to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(doc: &Json) -> Result<EvalCache, String> {
        let version = doc
            .get("cache_format_version")
            .and_then(Json::as_u64)
            .ok_or("missing cache_format_version")?;
        if version != CACHE_FORMAT_VERSION {
            return Err(format!("unsupported cache format version {version}"));
        }
        let cache = EvalCache::new();
        let entries = match doc.get("entries") {
            Some(Json::Object(fields)) => fields,
            _ => return Err("`entries` must be an object".into()),
        };
        for (key, value) in entries {
            let key = Digest::parse(key).ok_or_else(|| format!("bad cache key `{key}`"))?;
            let throughput = value
                .get("throughput")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {key}: missing throughput"))?;
            let energy_per_iter = value
                .get("energy_per_iter")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {key}: missing energy_per_iter"))?;
            cache.insert(
                key,
                EnergyDelay {
                    throughput,
                    energy_per_iter,
                },
            );
        }
        Ok(cache)
    }

    /// Load a cache file; a missing file yields an empty cache (a
    /// cold start), any other failure is an error.
    ///
    /// # Errors
    ///
    /// Returns a description of an unreadable or malformed file.
    pub fn load(path: &str) -> Result<EvalCache, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(EvalCache::new());
            }
            Err(e) => return Err(format!("reading {path}: {e}")),
        };
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        EvalCache::from_json(&doc).map_err(|e| format!("{path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::digest_bytes;

    fn ed(t: f64, e: f64) -> EnergyDelay {
        EnergyDelay {
            throughput: t,
            energy_per_iter: e,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = EvalCache::new();
        let k = digest_bytes(b"k");
        assert_eq!(c.lookup(k), None);
        c.insert(k, ed(0.5, 2.0));
        assert_eq!(c.lookup(k), Some(ed(0.5, 2.0)));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn round_trips_exactly_and_sorts_entries() {
        let c = EvalCache::new();
        // Insert in descending key order; the rendering must not care.
        let keys: Vec<Digest> = (0..16u64)
            .rev()
            .map(|i| digest_bytes(&i.to_le_bytes()))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            c.insert(k, ed(1.0 / (i as f64 + 3.0), 0.1 * i as f64 + 0.77));
        }
        let text = c.to_json().render();
        let back = EvalCache::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), c.len());
        // Byte-identical re-rendering: floats survive the round trip
        // exactly and ordering is canonical.
        assert_eq!(back.to_json().render(), text);
        for &k in &keys {
            assert_eq!(back.lookup(k), c.lookup(k));
        }
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let c = EvalCache::load("/nonexistent/uecgra-dse-cache.json").unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(EvalCache::from_json(&Json::object(vec![])).is_err());
        let bad = Json::object(vec![
            ("cache_format_version", Json::Uint(CACHE_FORMAT_VERSION)),
            ("entries", Json::object(vec![("zz", Json::Uint(1))])),
        ]);
        assert!(EvalCache::from_json(&bad).is_err());
    }
}

//! Canonical evaluation-cache keys.
//!
//! A cache key must identify one `(DFG, memory image, marker, routed
//! edge latencies, model parameters, mode assignment)` evaluation
//! exactly, and nothing else — two configurations that the analytical
//! model cannot distinguish must hash equal, and any change the model
//! *can* observe must change the key (invalidation by construction:
//! there is no version counter to forget to bump).
//!
//! Key derivation therefore goes through the `uecgra-probe` canonical
//! JSON serializer: the configuration is described as a [`Json`]
//! value, *normalized* (object fields sorted by name, so the key is
//! independent of struct-field or insertion order), rendered to its
//! canonical byte string, and digested with two independently seeded
//! SplitMix64-mix lanes into a 128-bit [`Digest`]. Floats render with
//! Rust's shortest-round-trip formatting, so the byte stream — and
//! hence the key — is identical on every platform, thread count, and
//! run.

use uecgra_probe::Json;

/// A 128-bit content digest (two independent 64-bit mix lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64, pub u64);

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl Digest {
    /// Parse the 32-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest(hi, lo))
    }

    /// The digest as one 128-bit integer (HashMap key form).
    pub fn as_u128(self) -> u128 {
        (u128::from(self.0) << 64) | u128::from(self.1)
    }
}

/// SplitMix64's avalanche mixer (the same finalizer
/// `uecgra_util::SplitMix64` uses), as a pure function.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold one word into a running lane state.
fn fold(state: u64, word: u64) -> u64 {
    mix64(state ^ word)
}

/// Two distinct lane seeds (arbitrary odd constants); two independent
/// lanes push accidental collisions out to the 128-bit birthday bound.
const LANE_SEEDS: [u64; 2] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F];

/// Digest a byte string with both lanes (length-suffixed, so streams
/// that are prefixes of each other cannot collide trivially).
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut lanes = LANE_SEEDS;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let word = u64::from_le_bytes(word);
        for lane in &mut lanes {
            *lane = fold(*lane, word);
        }
    }
    for lane in &mut lanes {
        *lane = fold(*lane, bytes.len() as u64);
    }
    Digest(lanes[0], lanes[1])
}

/// Recursively sort every object's fields by key. The canonical
/// writer preserves insertion order, so normalizing before rendering
/// is what makes the digest independent of how a configuration
/// description happened to be assembled (struct-field reordering,
/// builder-call order, …).
pub fn normalize(v: &Json) -> Json {
    match v {
        Json::Array(items) => Json::Array(items.iter().map(normalize).collect()),
        Json::Object(fields) => {
            let mut sorted: Vec<(String, Json)> = fields
                .iter()
                .map(|(k, x)| (k.clone(), normalize(x)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(sorted)
        }
        other => other.clone(),
    }
}

/// Digest a JSON value: normalize, render canonically, digest the
/// bytes.
pub fn digest_json(v: &Json) -> Digest {
    digest_bytes(normalize(v).render().as_bytes())
}

/// Combine two digests into one (order-sensitive).
pub fn combine(a: Digest, b: Digest) -> Digest {
    Digest(
        fold(fold(fold(LANE_SEEDS[0], a.0), a.1), b.0) ^ b.1,
        fold(fold(fold(LANE_SEEDS[1], b.1), b.0), a.1) ^ a.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_renders_and_parses() {
        let d = digest_bytes(b"hello");
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Digest::parse(&s), Some(d));
        assert_eq!(Digest::parse("zz"), None);
    }

    #[test]
    fn field_order_does_not_matter() {
        let a = Json::object(vec![
            ("alpha", Json::Uint(1)),
            ("beta", Json::Float(2.5)),
            (
                "nested",
                Json::object(vec![("x", Json::Uint(7)), ("y", Json::Uint(8))]),
            ),
        ]);
        let b = Json::object(vec![
            (
                "nested",
                Json::object(vec![("y", Json::Uint(8)), ("x", Json::Uint(7))]),
            ),
            ("beta", Json::Float(2.5)),
            ("alpha", Json::Uint(1)),
        ]);
        assert_eq!(digest_json(&a), digest_json(&b));
    }

    #[test]
    fn value_changes_change_the_digest() {
        let base = Json::object(vec![("alpha", Json::Uint(1))]);
        let other = Json::object(vec![("alpha", Json::Uint(2))]);
        let renamed = Json::object(vec![("alphb", Json::Uint(1))]);
        assert_ne!(digest_json(&base), digest_json(&other));
        assert_ne!(digest_json(&base), digest_json(&renamed));
    }

    #[test]
    fn array_order_does_matter() {
        let a = Json::Array(vec![Json::Uint(1), Json::Uint(2)]);
        let b = Json::Array(vec![Json::Uint(2), Json::Uint(1)]);
        assert_ne!(digest_json(&a), digest_json(&b));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = digest_bytes(b"a");
        let b = digest_bytes(b"b");
        assert_ne!(combine(a, b), combine(b, a));
        assert_eq!(combine(a, b), combine(a, b));
    }

    #[test]
    fn prefix_streams_do_not_collide() {
        assert_ne!(digest_bytes(b"ab"), digest_bytes(b"ab\0"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
    }
}

//! Deterministic DVFS design-space exploration for UE-CGRA kernels.
//!
//! The paper's power-mapping pass (Section III) commits to a single
//! greedy per-PE VF-mode assignment. This crate searches *beyond* that
//! pass: it explores the grouped assignment space through the
//! analytical model, memoizes every measurement in a canonical-hash
//! [`EvalCache`] (optionally persisted to disk in `uecgra-probe`
//! canonical JSON), and returns the Pareto frontier over
//! (delay, energy, EDP) with the greedy result as a baseline the
//! frontier dominates or matches by construction.
//!
//! Everything is bit-identical across `UECGRA_THREADS` settings and
//! across cold vs warm caches: search decisions run on the calling
//! thread; only batched model evaluations fan out.
//!
//! Modules:
//!
//! * [`key`] — canonical 128-bit cache keys via the normalized probe
//!   JSON serializer (invalidation by construction).
//! * [`cache`] — the thread-safe memo table and its on-disk form.
//! * [`pareto`] — dominance and frontier extraction.
//! * [`search`] — the explorer (pruned exhaustive / seeded hill-climb).
//! * [`rtl_check`] — opt-in cycle-level cross-check of chosen points.

#![warn(missing_docs)]

pub mod cache;
pub mod key;
pub mod pareto;
pub mod rtl_check;
pub mod search;

pub use cache::{EvalCache, CACHE_FORMAT_VERSION};
pub use key::{combine, digest_bytes, digest_json, Digest};
pub use pareto::{dominates, modes_string, pareto_frontier, parse_modes, DsePoint};
pub use rtl_check::rtl_crosscheck;
pub use search::{candidate_key, config_digest, explore, DseConfig, DseOutcome};

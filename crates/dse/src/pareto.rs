//! Pareto-frontier extraction over (delay, energy, EDP).
//!
//! A point dominates another when it is no worse on *all three* axes
//! — iteration delay (1/throughput), energy per iteration, and their
//! product — and strictly better on at least one. (Dominance in the
//! first two implies dominance in EDP, but comparing all three keeps
//! the definition aligned with the report schema and costs nothing.)

use uecgra_clock::VfMode;
use uecgra_model::EnergyDelay;

/// One evaluated design point: a node-level mode assignment and its
/// measured energy-delay.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Mode per DFG node.
    pub modes: Vec<VfMode>,
    /// The measurement.
    pub ed: EnergyDelay,
}

impl DsePoint {
    /// Delay per iteration in nominal cycles (1 / throughput).
    pub fn delay(&self) -> f64 {
        1.0 / self.ed.throughput
    }

    /// Energy per iteration (normalized units).
    pub fn energy(&self) -> f64 {
        self.ed.energy_per_iter
    }

    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.ed.edp()
    }

    /// Compact mode string, one letter per node (`R`/`N`/`S`).
    pub fn modes_string(&self) -> String {
        modes_string(&self.modes)
    }
}

/// Render a mode assignment as one letter per node.
pub fn modes_string(modes: &[VfMode]) -> String {
    modes
        .iter()
        .map(|m| match m {
            VfMode::Rest => 'R',
            VfMode::Nominal => 'N',
            VfMode::Sprint => 'S',
        })
        .collect()
}

/// Parse a [`modes_string`] rendering back into modes.
pub fn parse_modes(s: &str) -> Option<Vec<VfMode>> {
    s.chars()
        .map(|c| match c {
            'R' => Some(VfMode::Rest),
            'N' => Some(VfMode::Nominal),
            'S' => Some(VfMode::Sprint),
            _ => None,
        })
        .collect()
}

/// Does `a` dominate `b` on (delay, energy, EDP)?
pub fn dominates(a: &EnergyDelay, b: &EnergyDelay) -> bool {
    let (ad, ae, ap) = (1.0 / a.throughput, a.energy_per_iter, a.edp());
    let (bd, be, bp) = (1.0 / b.throughput, b.energy_per_iter, b.edp());
    ad <= bd && ae <= be && ap <= bp && (ad < bd || ae < be || ap < bp)
}

/// Extract the Pareto frontier of `points`.
///
/// Members are returned sorted by ascending delay (then energy, then
/// mode string — a total, deterministic order). Duplicate
/// measurements (same delay *and* energy) keep only the
/// lexicographically smallest mode string, so the frontier is a
/// canonical representative set.
pub fn pareto_frontier(points: &[DsePoint]) -> Vec<DsePoint> {
    let mut front: Vec<DsePoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| dominates(&q.ed, &p.ed));
        if dominated {
            continue;
        }
        // Duplicate measurement: keep one canonical representative.
        if let Some(existing) = front
            .iter_mut()
            .find(|q| q.delay() == p.delay() && q.energy() == p.energy())
        {
            if p.modes_string() < existing.modes_string() {
                *existing = p.clone();
            }
            continue;
        }
        front.push(p.clone());
    }
    front.sort_by(|a, b| {
        a.delay()
            .partial_cmp(&b.delay())
            .expect("finite delay")
            .then(a.energy().partial_cmp(&b.energy()).expect("finite energy"))
            .then_with(|| a.modes_string().cmp(&b.modes_string()))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(delay: f64, energy: f64, tag: VfMode) -> DsePoint {
        DsePoint {
            modes: vec![tag],
            ed: EnergyDelay {
                throughput: 1.0 / delay,
                energy_per_iter: energy,
            },
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = pt(1.0, 1.0, VfMode::Nominal).ed;
        let b = pt(2.0, 1.0, VfMode::Nominal).ed;
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a), "a point never dominates itself");
    }

    #[test]
    fn frontier_drops_dominated_points() {
        let pts = vec![
            pt(1.0, 4.0, VfMode::Sprint),
            pt(2.0, 2.0, VfMode::Nominal),
            pt(4.0, 1.0, VfMode::Rest),
            pt(3.0, 3.0, VfMode::Nominal), // dominated by (2,2)
        ];
        let front = pareto_frontier(&pts);
        assert_eq!(front.len(), 3);
        let delays: Vec<f64> = front.iter().map(DsePoint::delay).collect();
        assert!(delays.windows(2).all(|w| w[0] < w[1]), "sorted by delay");
    }

    #[test]
    fn duplicate_measurements_keep_one_canonical_member() {
        let pts = vec![pt(1.0, 1.0, VfMode::Sprint), pt(1.0, 1.0, VfMode::Nominal)];
        let front = pareto_frontier(&pts);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].modes_string(), "N", "lexicographically smallest");
    }

    #[test]
    fn modes_string_round_trips() {
        let modes = vec![VfMode::Rest, VfMode::Nominal, VfMode::Sprint];
        assert_eq!(modes_string(&modes), "RNS");
        assert_eq!(parse_modes("RNS"), Some(modes));
        assert_eq!(parse_modes("RNX"), None);
    }
}

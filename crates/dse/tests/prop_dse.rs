//! Property tests for the DSE subsystem: Pareto-frontier laws and
//! cache-key stability.

use uecgra_clock::VfMode;
use uecgra_dse::{
    candidate_key, config_digest, digest_json, dominates, pareto_frontier, DsePoint, EvalCache,
};
use uecgra_model::{EnergyDelay, ModelParams};
use uecgra_probe::Json;
use uecgra_util::check::forall;
use uecgra_util::{par_tabulate, SplitMix64};

fn random_points(rng: &mut SplitMix64, n: usize) -> Vec<DsePoint> {
    (0..n)
        .map(|i| DsePoint {
            // Distinct mode vectors so frontier members are tellable
            // apart even when measurements collide.
            modes: (0..8)
                .map(|b| VfMode::ALL[((i >> b) % 3) as usize])
                .collect(),
            ed: EnergyDelay {
                // Quantized to provoke exact ties and duplicates.
                throughput: 1.0 / (1.0 + rng.range(8) as f64),
                energy_per_iter: 0.5 + 0.25 * rng.range(8) as f64,
            },
        })
        .collect()
}

#[test]
fn frontier_members_never_dominate_each_other() {
    forall(200, |rng| {
        let n = 1 + rng.range(24);
        let points = random_points(rng, n);
        let front = pareto_frontier(&points);
        assert!(!front.is_empty(), "a non-empty set has a frontier");
        for a in &front {
            for b in &front {
                assert!(
                    !dominates(&a.ed, &b.ed),
                    "frontier member {:?} dominates member {:?}",
                    a.ed,
                    b.ed
                );
            }
        }
    });
}

#[test]
fn every_dropped_point_is_dominated_or_duplicated() {
    forall(200, |rng| {
        let n = 1 + rng.range(24);
        let points = random_points(rng, n);
        let front = pareto_frontier(&points);
        for p in &points {
            let kept = front
                .iter()
                .any(|f| f.delay() == p.delay() && f.energy() == p.energy());
            let covered = front.iter().any(|f| dominates(&f.ed, &p.ed));
            assert!(
                kept || covered,
                "dropped point {:?} is neither dominated nor duplicated",
                p.ed
            );
        }
    });
}

fn random_json(rng: &mut SplitMix64, depth: usize) -> Json {
    match if depth == 0 {
        rng.range(4)
    } else {
        rng.range(6)
    } {
        0 => Json::Null,
        1 => Json::Bool(rng.bool()),
        2 => Json::Uint(rng.next_u64() >> rng.range(64)),
        3 => Json::Float((rng.next_u32() as f64) / 257.0),
        4 => Json::Array(
            (0..rng.range(4))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.range(4))
                .map(|i| (format!("field{i}"), random_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

/// Fisher–Yates with the property RNG.
fn shuffled<T: Clone>(rng: &mut SplitMix64, items: &[T]) -> Vec<T> {
    let mut v = items.to_vec();
    for i in (1..v.len()).rev() {
        v.swap(i, rng.range(i + 1));
    }
    v
}

#[test]
fn cache_keys_ignore_object_field_order() {
    forall(200, |rng| {
        let fields: Vec<(String, Json)> = (0..2 + rng.range(6))
            .map(|i| (format!("k{i}"), random_json(rng, 2)))
            .collect();
        let a = Json::Object(fields.clone());
        let b = Json::Object(shuffled(rng, &fields));
        assert_eq!(
            digest_json(&a),
            digest_json(&b),
            "field order leaked into the digest"
        );
    });
}

#[test]
fn cache_keys_are_stable_across_threads_and_runs() {
    let toy = uecgra_dfg::kernels::synthetic::fig2_toy();
    let params = ModelParams::default();
    let config = config_digest(&toy.dfg, &[0; 64], toy.iter_marker, &[], &params, 96);
    let modes: Vec<Vec<VfMode>> = (0..64usize)
        .map(|i| {
            let mut x = i;
            (0..toy.dfg.node_count())
                .map(|_| {
                    let m = VfMode::ALL[x % 3];
                    x /= 3;
                    m
                })
                .collect()
        })
        .collect();
    let reference: Vec<_> = modes.iter().map(|m| candidate_key(config, m)).collect();
    // Same keys from a parallel derivation at whatever UECGRA_THREADS
    // this test runs under, and from a repeated sequential one.
    let parallel = par_tabulate(modes.len(), |i| candidate_key(config, &modes[i]));
    assert_eq!(parallel, reference);
    let again: Vec<_> = modes.iter().map(|m| candidate_key(config, m)).collect();
    assert_eq!(again, reference);
    // Keys must also be pairwise distinct assignments → distinct keys.
    let mut sorted = reference.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), reference.len(), "key collision across modes");
}

#[test]
fn cache_round_trip_is_byte_stable_under_insertion_order() {
    forall(50, |rng| {
        let entries: Vec<(u64, f64, f64)> = (0..1 + rng.range(16))
            .map(|i| {
                (
                    i as u64,
                    1.0 / (1.0 + rng.range(9) as f64),
                    (rng.next_u32() as f64) / 65536.0,
                )
            })
            .collect();
        let build = |order: &[(u64, f64, f64)]| {
            let c = EvalCache::new();
            for &(i, t, e) in order {
                c.insert(
                    uecgra_dse::digest_bytes(&i.to_le_bytes()),
                    EnergyDelay {
                        throughput: t,
                        energy_per_iter: e,
                    },
                );
            }
            c.to_json().render()
        };
        let a = build(&entries);
        let b = build(&shuffled(rng, &entries));
        assert_eq!(a, b, "insertion order leaked into the cache file");
    });
}

//! The `UECGRA_THREADS` escape hatch.
//!
//! This test lives alone in its own integration binary because it
//! mutates process-wide environment state; keeping it isolated means
//! no other test can observe the variable mid-flight.

use std::thread;
use uecgra_util::{num_threads, par_map};

#[test]
fn uecgra_threads_one_forces_inline_serial_execution() {
    std::env::set_var("UECGRA_THREADS", "1");
    assert_eq!(num_threads(), 1);

    // Every task must run on the caller's thread — no workers spawned.
    let caller = thread::current().id();
    let items: Vec<u64> = (0..100).collect();
    let out = par_map(&items, |&x| {
        assert_eq!(
            thread::current().id(),
            caller,
            "task left the caller thread"
        );
        x * 7
    });
    assert_eq!(out, items.iter().map(|&x| x * 7).collect::<Vec<_>>());

    // And the result must match what more threads produce.
    std::env::set_var("UECGRA_THREADS", "8");
    assert_eq!(num_threads(), 8);
    let out8 = par_map(&items, |&x| x * 7);
    assert_eq!(out, out8, "thread count changed results");

    // Invalid overrides fall back to 1 rather than panicking.
    std::env::set_var("UECGRA_THREADS", "zero");
    assert_eq!(num_threads(), 1);
    std::env::remove_var("UECGRA_THREADS");
}

//! Dependency-free utilities shared across the UE-CGRA reproduction.
//!
//! The container that builds this workspace has no network access, so
//! everything that would normally come from crates.io lives here
//! instead, implemented on `std` alone:
//!
//! - [`rng`]: a small deterministic PRNG (SplitMix64) replacing `rand`
//!   for simulated annealing and randomized tests.
//! - [`check`]: a miniature property-testing harness replacing
//!   `proptest` — run a closure over many seeded RNGs and report the
//!   failing seed.
//! - [`par`]: a deterministic work-sharing parallel executor (see the
//!   module docs for the determinism contract).

#![warn(missing_docs)]

pub mod check;
pub mod par;
pub mod rng;

pub use par::{num_threads, par_map, par_map_slice, par_tabulate};
pub use rng::SplitMix64;

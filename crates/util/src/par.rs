//! A deterministic, dependency-free parallel executor.
//!
//! The evaluation harnesses in this workspace are embarrassingly
//! parallel: every sweep point, kernel compile, or fabric run is a
//! pure function of its inputs. This module runs such task sets
//! across threads with a *work-sharing* scheme — `std::thread::scope`
//! workers pulling task indices from one shared atomic counter over
//! an immutable task slice — which is all the stealing a flat task
//! list needs.
//!
//! # Determinism contract
//!
//! Results are written into pre-sized output slots addressed by task
//! index, and callers fold reductions on the main thread in index
//! order. Thread count therefore affects only *which worker* computes
//! a task, never the task's inputs or where its output lands: the
//! returned `Vec` is bit-identical for any thread count, including 1.
//! `UECGRA_THREADS=1` is the escape hatch that removes threading from
//! the picture entirely (tasks run inline on the caller's thread).
//!
//! # Panics
//!
//! A panicking task poisons nothing: remaining workers drain the
//! queue, then the first panic payload is re-raised on the caller's
//! thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Worker threads to use: the `UECGRA_THREADS` env override if set
/// and valid (minimum 1), else `std::thread::available_parallelism`.
#[must_use]
pub fn num_threads() -> usize {
    match std::env::var("UECGRA_THREADS") {
        Ok(s) => parse_threads(&s).unwrap_or(1),
        Err(_) => thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Parse a `UECGRA_THREADS` value; `None` when not a positive integer.
#[must_use]
pub fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Compute `f(0), f(1), …, f(n-1)` across [`num_threads`] workers and
/// return the results in index order.
///
/// This is the executor's primitive; [`par_map`] wraps it for slices.
/// See the module docs for the determinism contract.
///
/// # Panics
///
/// Re-raises the first task panic after all workers finish.
pub fn par_tabulate<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let worker = || {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        local
    };

    let batches: Vec<thread::Result<Vec<(usize, R)>>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    // Index-addressed output slots: order is defined by task index
    // alone, never by completion order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for batch in batches {
        match batch {
            Ok(pairs) => {
                for (i, r) in pairs {
                    debug_assert!(slots[i].is_none(), "task {i} produced twice");
                    slots[i] = Some(r);
                }
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index produced exactly once"))
        .collect()
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// # Panics
///
/// Re-raises the first task panic after all workers finish.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_tabulate(items.len(), |i| f(&items[i]))
}

/// Map `f` over `items` in parallel with the item index, preserving
/// input order.
///
/// # Panics
///
/// Re-raises the first task panic after all workers finish.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_tabulate(items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        let out = par_tabulate(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = thread::current().id();
        let out = par_map(&[5u32], |&x| {
            assert_eq!(thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn tabulate_passes_indices() {
        let out = par_tabulate(257, |i| i * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    #[should_panic(expected = "task 13 exploded")]
    fn task_panics_propagate() {
        par_tabulate(64, |i| {
            if i == 13 {
                panic!("task 13 exploded");
            }
            i
        });
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 1 "), Some(1));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }
}

//! A small deterministic PRNG.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit counter run
//! through an avalanche mixer. It is not cryptographic, but it is
//! fast, passes the statistical tests that matter for simulated
//! annealing and randomized testing, and — crucially for this
//! workspace — has a one-word state that makes every consumer
//! reproducible from a single `u64` seed.

/// Deterministic 64-bit PRNG with a single word of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Distinct seeds give independent streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed `usize` in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the bias for any bound
    /// that fits in a `u32` is far below anything our consumers can
    /// observe, and the map from stream to output is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits of the stream.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly distributed `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + ((u128::from(self.next_u64()) * u128::from(hi - lo)) >> 64) as u64
    }

    /// Pick a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.range_u64(5, 12);
            assert!((5..12).contains(&v));
        }
    }
}

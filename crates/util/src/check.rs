//! A miniature property-testing harness.
//!
//! [`forall`] runs a property closure against many independently
//! seeded [`SplitMix64`] streams. When a case fails (panics), the
//! harness reports the case seed before re-raising, and
//! `UECGRA_CHECK_SEED=<seed>` reruns exactly that case — the two
//! things we actually used `proptest` for, without the dependency
//! (the build container has no network, so external crates cannot
//! even be resolved).
//!
//! There is deliberately no shrinking: generators in this workspace
//! draw small structured inputs directly, so failing cases are
//! already small.

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Run `property` against `cases` independently seeded RNG streams.
///
/// Case `i` receives an RNG seeded with a mix of `i`, so cases are
/// independent and the whole run is reproducible. Set
/// `UECGRA_CHECK_SEED` to rerun a single reported seed.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing seed.
pub fn forall<F>(cases: u64, property: F)
where
    F: Fn(&mut SplitMix64),
{
    if let Ok(s) = std::env::var("UECGRA_CHECK_SEED") {
        let seed: u64 = s.parse().expect("UECGRA_CHECK_SEED must be a u64");
        let mut rng = SplitMix64::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    for case in 0..cases {
        // Spread case indices across the seed space so neighbouring
        // cases do not share stream prefixes.
        let seed = SplitMix64::seed_from_u64(case).next_u64();
        let mut rng = SplitMix64::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "property failed on case {case}/{cases} \
                 (rerun with UECGRA_CHECK_SEED={seed})"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_case() {
        let count = AtomicU64::new(0);
        forall(37, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn cases_get_distinct_streams() {
        let first = AtomicU64::new(u64::MAX);
        let distinct = AtomicU64::new(0);
        forall(16, |rng| {
            let v = rng.next_u64();
            if first
                .compare_exchange(u64::MAX, v, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
                && v != first.load(Ordering::Relaxed)
            {
                distinct.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(distinct.load(Ordering::Relaxed) >= 14);
    }

    #[test]
    #[should_panic(expected = "property violated")]
    fn failures_propagate() {
        forall(8, |rng| {
            if rng.next_u64() % 2 < 2 {
                panic!("property violated");
            }
        });
    }
}

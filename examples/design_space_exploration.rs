//! Design-space exploration with the analytical model.
//!
//! Uses the Section II analytical model the way an architect would
//! during early design: sweep every per-chain VF assignment of a
//! dataflow graph, print the Pareto frontier, and compare against what
//! the compiler's three-phase power-mapping heuristic finds on its
//! own.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use uecgra_clock::VfMode;
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_dfg::kernels::synthetic;
use uecgra_model::sweep::sweep_group_modes;

fn main() {
    let cs = synthetic::fig3_case_study();
    println!(
        "case-study DFG: {} ops, {} live-ins, one {}-node cycle\n",
        cs.dfg.pe_node_count(),
        cs.live_ins.len(),
        cs.cycle.len()
    );

    // Exhaustive sweep (3^groups configurations).
    let sweep = sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker);
    println!("exhaustive sweep: {} configurations", sweep.points.len());
    println!("Pareto frontier (speedup, efficiency):");
    for p in sweep.pareto_front() {
        let modes: Vec<&str> = p
            .group_modes
            .iter()
            .map(|m| match m {
                VfMode::Rest => "r",
                VfMode::Nominal => "n",
                VfMode::Sprint => "S",
            })
            .collect();
        println!(
            "  {:>5.2}x speed, {:>5.2}x eff   groups [{}]",
            p.speedup,
            p.efficiency,
            modes.join("")
        );
    }

    // What the heuristic finds without the exhaustive search.
    println!("\nthree-phase power-mapping heuristic:");
    for (label, objective) in [
        ("performance-optimized", Objective::Performance),
        ("energy-optimized", Objective::Energy),
    ] {
        let pm = power_map(&cs.dfg, vec![0; 4096], cs.iter_marker, objective);
        println!(
            "  {label:<24} {:>5.2}x speed, {:>5.2}x eff",
            pm.speedup(),
            pm.efficiency()
        );
    }

    let best = sweep.best_edp().expect("nonempty");
    println!(
        "\nbest energy-delay point in the full space: {:.2}x speed, {:.2}x eff",
        best.speedup, best.efficiency
    );
    println!("The O(N*M) heuristic lands on (or next to) the exhaustive frontier —");
    println!("the paper's argument for why a simple pass suffices in the compiler.");
}

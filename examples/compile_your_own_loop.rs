//! Compile your own loop: from C-like IR to a configured fabric.
//!
//! Writes a small saturating-accumulate loop in the compiler's loop IR
//! (the stand-in for the paper's LLVM frontend), lowers it to a
//! dataflow graph with control converted to phi/br dataflow, maps it
//! onto the 8×8 array, power-maps it, and runs it both on the
//! cycle-level CGRA fabric and on the RV32IM comparison core.
//!
//! Run with: `cargo run --release --example compile_your_own_loop`

use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::frontend::lower;
use uecgra_compiler::ir::{Carried, Expr, LoopNest, Stmt};
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_dfg::analysis::recurrence_mii;
use uecgra_dfg::Op;
use uecgra_rtl::fabric::{Fabric, FabricConfig};

const N: usize = 256;
const SRC: u32 = 16;
const DST: u32 = SRC + N as u32 + 16;

/// The loop, in C:
///
/// ```c
/// for (i = 0; i < N; ++i) {
///   acc += src[i];
///   if (acc > 10000) acc = 10000;   // saturate
///   dst[i] = acc;
/// }
/// ```
fn saturating_accumulate() -> LoopNest {
    LoopNest {
        var: "i".into(),
        trip_count: N as u32,
        carried: vec![Carried {
            name: "acc".into(),
            init: 0,
        }],
        body: vec![
            Stmt::assign(
                "acc",
                Expr::add(
                    Expr::var("acc"),
                    Expr::load(Expr::add(Expr::var("i"), Expr::Const(SRC))),
                ),
            ),
            Stmt::If {
                cond: Expr::bin(Op::Gt, Expr::var("acc"), Expr::Const(10_000)),
                then_arm: vec![Stmt::assign("acc", Expr::Const(10_000))],
                else_arm: vec![],
            },
            Stmt::Store {
                addr: Expr::add(Expr::var("i"), Expr::Const(DST)),
                value: Expr::var("acc"),
            },
        ],
    }
}

fn main() {
    // 1. Lower the IR to a dataflow graph.
    let lowered = lower(&saturating_accumulate()).expect("valid IR");
    println!(
        "lowered DFG: {} ops, recurrence MII {} cycles",
        lowered.dfg.pe_node_count(),
        recurrence_mii(&lowered.dfg)
    );

    // 2. Place and route onto the 8x8 array.
    let mapped = MappedKernel::map(&lowered.dfg, ArrayShape::default(), 7).expect("fits");
    println!(
        "mapped: {:.0}% utilization, wirelength {}",
        mapped.utilization() * 100.0,
        mapped.wirelength()
    );

    // 3. Power-map (performance objective) and assemble the bitstream.
    let mut mem = vec![0u32; DST as usize + N + 16];
    let mut state = 123u32;
    for i in 0..N {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[SRC as usize + i] = state % 200;
    }
    let pm = power_map(
        &lowered.dfg,
        mem.clone(),
        lowered.induction_phi,
        Objective::Performance,
    );
    let bitstream = Bitstream::assemble(&lowered.dfg, &mapped, &pm.node_modes).expect("assembles");
    let sprints = pm
        .node_modes
        .iter()
        .filter(|m| **m == VfMode::Sprint)
        .count();
    let rests = pm.node_modes.iter().filter(|m| **m == VfMode::Rest).count();
    println!(
        "power mapping: {sprints} sprint, {rests} rest nodes; {} config words",
        bitstream.words().len()
    );

    // 4. Execute on the cycle-level fabric.
    let config = FabricConfig {
        marker: Some(mapped.coord_of(lowered.induction_phi)),
        ..FabricConfig::default()
    };
    let activity = Fabric::new(&bitstream, mem.clone(), config).run();
    println!(
        "fabric: {} iterations in {:.0} cycles (II {:.2})",
        activity.iterations(),
        activity.nominal_cycles(),
        activity.steady_ii(8).expect("steady state")
    );

    // 5. Check against a host reference.
    let mut acc: u32 = 0;
    for i in 0..N {
        acc = acc.wrapping_add(mem[SRC as usize + i]).min(10_000);
        assert_eq!(activity.mem[DST as usize + i], acc, "mismatch at {i}");
    }
    println!("result verified against the host reference — saturation handled as");
    println!("steered dataflow (br/phi), no program counter involved.");
}

//! Should this loop be offloaded? The system-integration view.
//!
//! Runs the `dither` kernel on the RV32IM in-order core and on the
//! CGRA (with reconfiguration and DMA overheads), then shows how the
//! verdict flips with iteration count — the paper's Table III point
//! that the 10K+-reuse regions CGRA compilers target easily amortize
//! the one-time costs.
//!
//! Run with: `cargo run --release --example offload_decision`

use uecgra_core::energy::cgra_energy;
use uecgra_core::pipeline::{run_kernel, Policy};
use uecgra_dfg::kernels;
use uecgra_rtl::config_load;
use uecgra_system::{core_energy_pj, programs, system_speedup, CoreEnergyParams, OffloadOverheads};
use uecgra_vlsi::GatingConfig;

fn main() {
    println!("offload analysis: dither (Floyd-Steinberg error diffusion)\n");
    println!(
        "{:>7} | {:>10} {:>10} | {:>8} {:>8} | {:>9}",
        "pixels", "core cyc", "CGRA cyc", "overhead", "speedup", "CGRA eff"
    );

    for n in [16usize, 64, 256, 1000, 4000] {
        let k = kernels::dither::build_with_pixels(n);

        // Scalar core.
        let core = programs::run_on_core("dither", n, k.mem.clone()).expect("program runs");
        assert_eq!(core.mem, k.reference_memory());
        let core_pj = core_energy_pj(&CoreEnergyParams::default(), &core.mix, core.cycles);

        // UE-CGRA POpt with offload overheads.
        let run = run_kernel(&k, Policy::UePerfOpt, 7).expect("kernel runs");
        let ov = OffloadOverheads {
            cfg_cycles: config_load::reconfiguration_cycles(&run.bitstream, true),
            data_cycles: config_load::data_load_cycles(k.mem.len()),
        };
        let speedup = system_speedup(core.cycles, run.activity.nominal_cycles(), ov);
        let cgra_pj = cgra_energy(&run, GatingConfig::FULL).total_pj();

        println!(
            "{:>7} | {:>10} {:>10.0} | {:>8} {:>8.2} | {:>9.2}",
            n,
            core.cycles,
            run.activity.nominal_cycles(),
            ov.total(),
            speedup,
            core_pj / cgra_pj
        );
    }

    println!("\nSmall trip counts lose to the reconfiguration + DMA overheads;");
    println!("by ~1000 iterations the CGRA wins decisively (paper: dither 1.80x).");
}

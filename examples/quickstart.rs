//! Quickstart: accelerate an irregular pointer-chasing loop with
//! fine-grain DVFS.
//!
//! Builds the paper's `llist` kernel (a linked-list search whose
//! inter-iteration dependency bottlenecks an ordinary elastic CGRA),
//! compiles it for the 8×8 array under all three policies, executes
//! each on the cycle-level fabric, and reports performance and energy.
//!
//! Run with: `cargo run --release --example quickstart`

use uecgra_core::energy::cgra_energy;
use uecgra_core::pipeline::{run_kernel, Policy};
use uecgra_dfg::kernels;
use uecgra_vlsi::GatingConfig;

fn main() {
    let kernel = kernels::llist::build_with_hops(1000);
    println!(
        "kernel: {} ({} ops, ideal recurrence {} cycles, {} iterations)\n",
        kernel.name,
        kernel.dfg.pe_node_count(),
        kernel.ideal_recurrence,
        kernel.iters
    );

    let expect = kernel.reference_memory();
    let mut baseline_ii = None;
    let mut baseline_pj = None;

    for policy in Policy::ALL {
        let run = run_kernel(&kernel, policy, 7).expect("kernel compiles and runs");
        assert_eq!(
            &run.activity.mem[..expect.len()],
            &expect[..],
            "result must match the host reference"
        );
        let energy = cgra_energy(&run, GatingConfig::FULL);
        let ii = run.ii();
        let pj = energy.per_iteration_pj();
        let (speedup, eff) = match (baseline_ii, baseline_pj) {
            (Some(b), Some(e)) => (b / ii, e / pj),
            _ => {
                baseline_ii = Some(ii);
                baseline_pj = Some(pj);
                (1.0, 1.0)
            }
        };
        println!(
            "{:<14}  II = {:>5.2} cycles   {:>6.2} pJ/iter   speedup {:>4.2}x   efficiency {:>4.2}x",
            policy.label(),
            ii,
            pj,
            speedup,
            eff
        );
    }

    println!("\nThe POpt mapping sprints the five-op pointer-chase recurrence at");
    println!("1.23 V / 1.5x frequency while resting the rest of the fabric — the");
    println!("paper's core result: true-dependency bottlenecks can be bought down");
    println!("with per-PE DVFS instead of more parallel hardware.");
}
